// Command experiments regenerates the paper's evaluation and manages the
// serializable artifacts behind it (corpora, the disk-persistent
// exploration cache):
//
//	experiments run                          # every table/figure, default corpus
//	experiments run -loops 60 -only fig6     # bigger corpus, subset
//	experiments run -dense                   # ~8× denser design-space grid
//	experiments run -cache-dir .cache        # warm-start across processes
//	experiments run -corpus c.hvc            # evaluate an imported corpus
//	experiments run -family media            # another synthetic family
//	experiments run -server http://host:8080 # same run, through a hetvliwd
//	                                         # daemon (byte-identical tables)
//
//	experiments corpus export -o c.hvc       # export the synthetic corpus
//	experiments corpus export -family media -loops 20 -o media.json
//	experiments corpus import -i c.json -o c.hvc   # validate / re-encode
//	experiments corpus stats -i c.hvc        # per-benchmark summary
//
//	experiments pareto                       # energy/performance frontier
//	experiments pareto -bench adpcm -ladder 8 -csv front.csv
//	experiments pareto -server http://host:8080  # frontier via a daemon
//
//	experiments cache stats -dir .cache      # entries / segments / bytes
//	experiments cache compact -dir .cache    # reclaim dead segment bytes
//	experiments cache clear -dir .cache      # drop every entry
//
// A bare `experiments [flags]` is shorthand for `experiments run [flags]`.
// Artifacts: table1, table2, fig6, fig7, fig8, fig9, numfast, ablation.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/artifact"
	"repro/internal/confsel"
	"repro/internal/experiments"
	"repro/internal/explore"
	"repro/internal/loopgen"
	"repro/internal/pipeline"
	"repro/internal/service"
)

func main() {
	args := os.Args[1:]
	cmd := "run"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	switch cmd {
	case "run":
		runCmd(args)
	case "pareto":
		paretoCmd(args)
	case "corpus":
		corpusCmd(args)
	case "cache":
		cacheCmd(args)
	case "help", "-h", "--help":
		usage(os.Stdout)
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown command %q\n\n", cmd)
		usage(os.Stderr)
		os.Exit(2)
	}
}

func usage(w *os.File) {
	fmt.Fprintln(w, `usage:
  experiments [run] [flags]          regenerate tables and figures
  experiments pareto [flags]         energy/performance Pareto frontier
  experiments corpus export [flags]  export a synthetic corpus artifact
  experiments corpus import [flags]  validate / re-encode a corpus file
  experiments corpus stats  [flags]  summarize a corpus
  experiments cache stats -dir DIR   inspect a disk cache directory
  experiments cache compact -dir DIR rewrite live entries, reclaim dead bytes
  experiments cache clear -dir DIR   remove every cache entry
run 'experiments <cmd> -h' for flags`)
}

// ------------------------------------------------------------------- run

func runCmd(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	loops := fs.Int("loops", 40, "loops per benchmark in the synthetic corpus")
	only := fs.String("only", "", "comma-separated subset: "+strings.Join(experiments.ArtifactNames, ","))
	par := fs.Int("par", 0, "worker parallelism (0 = NumCPU)")
	dense := fs.Bool("dense", false, "sweep the dense design-space grid (confsel.DenseSpace) instead of the paper's Table 2 grid")
	cachestats := fs.Bool("cachestats", false, "print the exploration engine's cache statistics on exit")
	cacheDir := fs.String("cache-dir", "", "disk-persistent cache directory (warm-starts later runs)")
	corpusFile := fs.String("corpus", "", "evaluate this corpus artifact instead of generating one")
	family := fs.String("family", "specfp", "synthetic generator family: "+strings.Join(loopgen.Families(), ", "))
	server := fs.String("server", "", "run through the hetvliwd daemon at this base URL instead of locally")
	effort := fs.Int("effort", 0, "anytime schedule-refinement budget, 0-9 (0 = baseline IMS)")
	exitOn(fs.Parse(args))

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			k = strings.TrimSpace(k)
			if !experiments.KnownArtifact(k) {
				exitOn(fmt.Errorf("unknown artifact %q (have %s)", k, strings.Join(experiments.ArtifactNames, ", ")))
			}
			want[k] = true
		}
	}
	enabled := func(k string) bool { return len(want) == 0 || want[k] }

	start := time.Now()
	var report *experiments.Report
	var stats explore.CacheStats
	if *server != "" {
		r, st, err := remoteReport(*server, *corpusFile, *family, *loops, *only, *effort, *dense, *cachestats)
		exitOn(err)
		report, stats = r, st
	} else {
		r, st, err := localReport(*corpusFile, *family, *loops, *par, *effort, *dense, *cacheDir, enabled)
		exitOn(err)
		report, stats = r, st
	}
	experiments.WriteReport(os.Stdout, report, enabled)
	if *cachestats {
		fmt.Printf("exploration cache: %d memory hits / %d disk hits / %d misses (%.1f%% hit rate), %d entries, %d disk writes\n",
			stats.Hits, stats.DiskHits, stats.Misses, 100*stats.HitRate(), stats.Entries, stats.DiskWrites)
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
}

// openCorpus returns a file-backed source for path, with a clean one-line
// error when nothing is there (a raw decode error would bury the common
// case: a typo'd or absent path).
func openCorpus(path string) (loopgen.Source, error) {
	if _, err := os.Stat(path); err != nil {
		return nil, fmt.Errorf("no corpus at %s", path)
	}
	return artifact.NewFileSource(path), nil
}

// localReport computes the report in-process, exactly as the daemon
// would: same Suite entry point, same artifact set.
func localReport(corpusFile, family string, loops, par, effort int, dense bool, cacheDir string,
	enabled func(string) bool) (*experiments.Report, explore.CacheStats, error) {
	eng, err := explore.NewDisk(par, cacheDir)
	if err != nil {
		return nil, explore.CacheStats{}, err
	}
	popts := pipeline.Options{
		LoopsPerBenchmark: loops,
		Effort:            effort,
		Parallelism:       par,
		Engine:            eng,
	}
	if corpusFile != "" {
		src, err := openCorpus(corpusFile)
		if err != nil {
			return nil, explore.CacheStats{}, err
		}
		popts.Corpus = src
	} else if family != "specfp" {
		src, err := loopgen.NewSyntheticSource(family, loops)
		if err != nil {
			return nil, explore.CacheStats{}, err
		}
		popts.Corpus = src
	}
	if dense {
		sp := confsel.DenseSpace()
		popts.Space = &sp
	}
	suite := experiments.New(popts)
	report, err := suite.Run(context.Background(), enabled)
	if err != nil {
		return nil, explore.CacheStats{}, err
	}
	// Flush the group-commit batch before exiting: a later process must
	// find everything this run memoised.
	if err := eng.SyncDisk(); err != nil {
		return nil, explore.CacheStats{}, err
	}
	return report, suite.CacheStats(), nil
}

// remoteReport computes the report through a hetvliwd daemon. The daemon
// decodes the same corpus bytes (or generates the same synthetic family)
// and runs the same Suite code, so the decoded report renders
// byte-identically to a local run.
func remoteReport(server, corpusFile, family string, loops int, only string, effort int,
	dense, wantStats bool) (*experiments.Report, explore.CacheStats, error) {
	req := service.SuiteRequest{Family: family, Loops: loops, Dense: dense, Effort: effort}
	if corpusFile != "" {
		data, err := os.ReadFile(corpusFile)
		if err != nil {
			return nil, explore.CacheStats{}, fmt.Errorf("no corpus at %s", corpusFile)
		}
		req.Corpus = data
	}
	if only != "" {
		for _, k := range strings.Split(only, ",") {
			k = strings.TrimSpace(k)
			if k == "table1" {
				continue // static: rendered locally, never computed remotely
			}
			req.Only = append(req.Only, k)
		}
		if len(req.Only) == 0 {
			// Only static artifacts requested: nothing to compute remotely.
			return &experiments.Report{}, explore.CacheStats{}, nil
		}
	}
	client := service.NewClient(server)
	ctx := context.Background()
	resp, err := client.Suite(ctx, req)
	if err != nil {
		return nil, explore.CacheStats{}, err
	}
	var stats explore.CacheStats
	if wantStats {
		// Only fetch the daemon's counters when they will be printed.
		st, err := client.Stats(ctx)
		if err != nil {
			return nil, explore.CacheStats{}, err
		}
		stats = st.Engine
	}
	return resp.Report, stats, nil
}

// ---------------------------------------------------------------- corpus

func corpusCmd(args []string) {
	sub := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		sub, args = args[0], args[1:]
	}
	switch sub {
	case "export":
		fs := flag.NewFlagSet("corpus export", flag.ExitOnError)
		family := fs.String("family", "specfp", "synthetic generator family: "+strings.Join(loopgen.Families(), ", "))
		loops := fs.Int("loops", 40, "loops per benchmark")
		out := fs.String("o", "", "output file (.json = JSON, else compact binary; required)")
		exitOn(fs.Parse(args))
		if *out == "" {
			exitOn(fmt.Errorf("corpus export: -o is required"))
		}
		src, err := loopgen.NewSyntheticSource(*family, *loops)
		exitOn(err)
		c, err := artifact.CorpusFromSource(src)
		exitOn(err)
		exitOn(artifact.WriteCorpusFile(*out, c))
		fmt.Printf("exported %s (%d benchmarks) to %s (sha256 %.16s…)\n",
			c.Name, len(c.Benchmarks), *out, c.Hash().Hex())

	case "import":
		fs := flag.NewFlagSet("corpus import", flag.ExitOnError)
		in := fs.String("i", "", "input corpus file (binary or JSON; required)")
		out := fs.String("o", "", "optional output file to re-encode to (.json = JSON, else binary)")
		exitOn(fs.Parse(args))
		if *in == "" {
			exitOn(fmt.Errorf("corpus import: -i is required"))
		}
		c, err := artifact.ReadCorpusFile(*in)
		exitOn(err)
		nLoops := 0
		for _, b := range c.Benchmarks {
			nLoops += len(b.Loops)
		}
		fmt.Printf("valid corpus %s: %d benchmarks, %d loops (sha256 %.16s…)\n",
			c.Name, len(c.Benchmarks), nLoops, c.Hash().Hex())
		if *out != "" {
			exitOn(artifact.WriteCorpusFile(*out, c))
			fmt.Printf("re-encoded to %s\n", *out)
		}

	case "stats":
		fs := flag.NewFlagSet("corpus stats", flag.ExitOnError)
		in := fs.String("i", "", "corpus file (default: generate synthetically)")
		family := fs.String("family", "specfp", "synthetic generator family (when no -i)")
		loops := fs.Int("loops", 40, "loops per benchmark (when no -i)")
		verbose := fs.Bool("v", false, "per-loop tables instead of the per-benchmark summary")
		exitOn(fs.Parse(args))
		var src loopgen.Source
		if *in != "" {
			s, err := openCorpus(*in)
			exitOn(err)
			src = s
		} else {
			s, err := loopgen.NewSyntheticSource(*family, *loops)
			exitOn(err)
			src = s
		}
		benches, err := loopgen.Load(src)
		exitOn(err)
		fmt.Printf("corpus %s\n", src.Name())
		if *verbose {
			for _, b := range benches {
				fmt.Println(loopgen.FormatBenchmark(b))
			}
		} else {
			fmt.Print(loopgen.FormatCorpusStats(benches))
		}

	default:
		fmt.Fprintln(os.Stderr, "usage: experiments corpus {export|import|stats} [flags]")
		os.Exit(2)
	}
}

// ----------------------------------------------------------------- cache

func cacheCmd(args []string) {
	sub := ""
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		sub, args = args[0], args[1:]
	}
	if sub != "stats" && sub != "clear" && sub != "compact" {
		fmt.Fprintln(os.Stderr, "usage: experiments cache {stats|compact|clear} -dir DIR")
		os.Exit(2)
	}
	fs := flag.NewFlagSet("cache "+sub, flag.ExitOnError)
	dir := fs.String("dir", "", "cache directory (required)")
	exitOn(fs.Parse(args))
	if *dir == "" {
		exitOn(fmt.Errorf("cache %s: -dir is required", sub))
	}
	msg, err := cacheMessage(sub, *dir)
	exitOn(err)
	fmt.Println(msg)
}

// cacheMessage runs one cache subcommand and renders its report. A
// nonexistent directory is a clean "no cache" report, not an error: it
// simply means nothing was ever cached there.
func cacheMessage(sub, dir string) (string, error) {
	switch sub {
	case "stats":
		st, err := explore.StatDiskCache(dir)
		if errors.Is(err, explore.ErrNoCacheDir) {
			return fmt.Sprintf("no cache at %s", dir), nil
		}
		if err != nil {
			return "", err
		}
		msg := fmt.Sprintf("%s: %d entries, %d bytes in %d segments (%d live / %d dead), index load %s",
			dir, st.Entries, st.Bytes, st.Segments, st.LiveBytes, st.DeadBytes,
			st.IndexLoad.Round(10*time.Microsecond))
		if st.LegacyFiles > 0 {
			msg += fmt.Sprintf(", %d legacy files pending import", st.LegacyFiles)
		}
		if st.TempFiles > 0 {
			msg += fmt.Sprintf(", %d temp files pending sweep", st.TempFiles)
		}
		return msg, nil

	case "compact":
		cs, err := explore.CompactDiskCache(dir)
		if errors.Is(err, explore.ErrNoCacheDir) {
			return fmt.Sprintf("no cache at %s", dir), nil
		}
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s: %d entries rewritten, %d -> %d segments, reclaimed %d bytes",
			dir, cs.Entries, cs.SegmentsBefore, cs.SegmentsAfter, cs.ReclaimedBytes), nil

	default: // clear
		n, err := explore.ClearDiskCache(dir)
		if errors.Is(err, explore.ErrNoCacheDir) {
			return fmt.Sprintf("no cache at %s", dir), nil
		}
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s: removed %d entries", dir, n), nil
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
