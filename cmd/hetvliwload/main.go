// Command hetvliwload drives a hetvliwd daemon — or a sharded cluster of
// them — with /v1/batch traffic at a configurable rate and concurrency,
// and reports latency percentiles and throughput:
//
//	hetvliwload -targets http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	  -family media -loops 8 -batch 4 -requests 200 -concurrency 8 -qps 50
//
// The workload is deterministic: the corpus comes from the synthetic
// generator families (seeded per benchmark), is chunked into batch
// request frames of -batch loops each, and workers cycle through the
// frames round-robin across the targets. Every response is decoded and
// shape-checked, so a nonzero error count means the cluster really
// misbehaved, not that the generator drifted.
//
// A second mode, -oneshot, sends the whole corpus as one batch request
// to the first target and writes the raw response frame to -o. Because
// batch frames are canonical binary artifacts, two runs against
// different deployments (one process vs a 3-shard cluster, healthy vs
// degraded) can be compared byte for byte — the CI shard smoke does
// exactly this with cmp(1).
//
// Exit status: 0 on success, 2 when any request failed (so CI can assert
// "zero errors" without parsing the report).
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/artifact"
	"repro/internal/clock"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/service"
)

func main() {
	var (
		targets     = flag.String("targets", "http://127.0.0.1:8080", "comma-separated daemon base URLs (round-robin)")
		family      = flag.String("family", "specfp", "synthetic corpus family (specfp, media, embedded)")
		loops       = flag.Int("loops", 4, "loops per benchmark in the generated corpus")
		batch       = flag.Int("batch", 8, "loops per batch request frame")
		requests    = flag.Int("requests", 100, "total requests to send (ignored with -duration)")
		duration    = flag.Duration("duration", 0, "send for this long instead of a fixed request count")
		concurrency = flag.Int("concurrency", 4, "concurrent in-flight requests")
		qps         = flag.Float64("qps", 0, "target request rate (0 = as fast as possible)")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-request timeout")
		buses       = flag.Int("buses", 1, "register buses of the batch machine")
		fast        = flag.Int64("fast", 0, "fast-cluster period in ps (0 = homogeneous reference machine)")
		slow        = flag.Int64("slow", 0, "slow-cluster period in ps (with -fast)")
		numFast     = flag.Int("numfast", 1, "number of fast clusters (with -fast/-slow)")
		oneshot     = flag.Bool("oneshot", false, "send the whole corpus as one batch request and exit")
		out         = flag.String("o", "", "with -oneshot: write the raw response frame here (default stdout)")
	)
	flag.Parse()

	urls := splitTargets(*targets)
	if len(urls) == 0 {
		fatal("no targets")
	}
	cfg, err := buildMachine(*buses, *fast, *slow, *numFast)
	if err != nil {
		fatal(err)
	}
	frames, totalLoops, err := buildFrames(*family, *loops, *batch, cfg, *oneshot)
	if err != nil {
		fatal(err)
	}

	if *oneshot {
		if err := runOneshot(urls[0], frames[0], *timeout, *out); err != nil {
			fatal(err)
		}
		return
	}

	rep := drive(urls, frames, driveOptions{
		requests:    *requests,
		duration:    *duration,
		concurrency: *concurrency,
		qps:         *qps,
		timeout:     *timeout,
	})
	rep.print(urls, *family, totalLoops, len(frames))
	if rep.errors > 0 {
		os.Exit(2)
	}
}

func fatal(v any) {
	fmt.Fprintln(os.Stderr, "hetvliwload:", v)
	os.Exit(1)
}

func splitTargets(s string) []string {
	var urls []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			urls = append(urls, strings.TrimRight(t, "/"))
		}
	}
	return urls
}

// buildMachine mirrors the /v1/schedule machine parameters: homogeneous
// reference by default, a heterogeneous clocking when -fast/-slow are set.
func buildMachine(buses int, fast, slow int64, numFast int) (*machine.Config, error) {
	if (fast == 0) != (slow == 0) {
		return nil, fmt.Errorf("-fast and -slow must be given together")
	}
	if fast == 0 {
		return machine.ReferenceConfig(buses), nil
	}
	arch := machine.Reference4Cluster(buses)
	clk := machine.NewClocking(arch, clock.Picos(slow), machine.ReferenceVdd)
	for c := 0; c < numFast && c < arch.NumClusters(); c++ {
		clk.MinPeriod[c] = clock.Picos(fast)
	}
	clk.MinPeriod[arch.ICN()] = clock.Picos(fast)
	clk.MinPeriod[arch.Cache()] = clock.Picos(fast)
	cfg := &machine.Config{Arch: arch, Clock: clk}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// buildFrames generates the deterministic corpus and chunks it into
// encoded batch request frames. With oneshot the whole corpus becomes a
// single frame.
func buildFrames(family string, loopsPer, batch int, cfg *machine.Config, oneshot bool) ([][]byte, int, error) {
	src, err := loopgen.NewSyntheticSource(family, loopsPer)
	if err != nil {
		return nil, 0, err
	}
	corpus, err := artifact.CorpusFromSource(src)
	if err != nil {
		return nil, 0, err
	}
	var flat []artifact.BatchLoop
	for _, b := range corpus.Benchmarks {
		for i, l := range b.Loops {
			flat = append(flat, artifact.BatchLoop{
				Bench:      b.Name,
				Index:      i,
				Graph:      l.Graph,
				Iterations: l.Iterations,
			})
		}
	}
	if len(flat) == 0 {
		return nil, 0, fmt.Errorf("empty corpus")
	}
	if oneshot || batch <= 0 || batch > len(flat) {
		batch = len(flat)
	}
	var frames [][]byte
	for at := 0; at < len(flat); at += batch {
		end := at + batch
		if end > len(flat) {
			end = len(flat)
		}
		frames = append(frames, artifact.EncodeBatchRequest(&artifact.BatchRequest{
			Config: cfg,
			Loops:  flat[at:end],
		}))
	}
	return frames, len(flat), nil
}

// runOneshot sends one frame and writes the raw response bytes.
func runOneshot(target string, frame []byte, timeout time.Duration, out string) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	data, err := service.NewClient(target).BatchRaw(ctx, frame)
	if err != nil {
		return err
	}
	res, err := artifact.DecodeBatchResult(data)
	if err != nil {
		return fmt.Errorf("response is not a batch result frame: %w", err)
	}
	fmt.Fprintf(os.Stderr, "hetvliwload: oneshot ok: %d loops, config %s, %d response bytes\n",
		len(res.Loops), res.ConfigSHA[:12], len(data))
	if out == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(out, data, 0o644)
}

type driveOptions struct {
	requests    int
	duration    time.Duration
	concurrency int
	qps         float64
	timeout     time.Duration
}

type report struct {
	sent      int
	errors    int
	loopsDone int64
	elapsed   time.Duration
	latencies []time.Duration
	firstErr  string
}

// drive fires frames at the targets round-robin from -concurrency
// workers, rate-limited to -qps when set, and collects per-request
// latencies.
func drive(urls []string, frames [][]byte, o driveOptions) *report {
	clients := make([]*service.Client, len(urls))
	for i, u := range urls {
		clients[i] = service.NewClient(u)
	}

	var (
		next     atomic.Int64 // request sequence number
		errs     atomic.Int64
		loopsOK  atomic.Int64
		mu       sync.Mutex
		lats     []time.Duration
		firstErr atomic.Value
	)

	// Rate limiter: one token per 1/qps interval, shared by all workers.
	var tokens <-chan time.Time
	if o.qps > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / o.qps))
		defer t.Stop()
		tokens = t.C
	}

	deadline := time.Time{}
	if o.duration > 0 {
		deadline = time.Now().Add(o.duration)
	}
	admit := func(seq int64) bool {
		if o.duration > 0 {
			return time.Now().Before(deadline)
		}
		return seq < int64(o.requests)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < max(1, o.concurrency); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seq := next.Add(1) - 1
				if !admit(seq) {
					return
				}
				if tokens != nil {
					<-tokens
				}
				frame := frames[seq%int64(len(frames))]
				client := clients[seq%int64(len(clients))]
				t0 := time.Now()
				ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
				data, err := client.BatchRaw(ctx, frame)
				cancel()
				lat := time.Since(t0)
				if err == nil {
					var res *artifact.BatchResult
					if res, err = artifact.DecodeBatchResult(data); err == nil {
						loopsOK.Add(int64(len(res.Loops)))
					}
				}
				if err != nil {
					errs.Add(1)
					firstErr.CompareAndSwap(nil, err.Error())
					continue
				}
				mu.Lock()
				lats = append(lats, lat)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	rep := &report{
		sent:      int(next.Load()),
		errors:    int(errs.Load()),
		loopsDone: loopsOK.Load(),
		elapsed:   time.Since(start),
		latencies: lats,
	}
	if o.duration > 0 {
		// Sequence numbers past the deadline were never sent.
		rep.sent = len(lats) + rep.errors
	} else {
		rep.sent = min(rep.sent, o.requests)
	}
	if fe, ok := firstErr.Load().(string); ok {
		rep.firstErr = fe
	}
	return rep
}

// pct returns the q-quantile of sorted latencies by the nearest-rank
// definition: the smallest value with at least ⌈q·n⌉ samples at or below
// it. The epsilon absorbs float artifacts like 0.9×10 = 9.000000000000002,
// whose ceil would otherwise skip a rank; the clamps make every q
// well-defined on 0-, 1- and 2-sample windows.
func pct(sorted []time.Duration, q float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(q*float64(n) - 1e-9))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

func (r *report) print(urls []string, family string, corpusLoops, frames int) {
	sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
	ok := len(r.latencies)
	secs := r.elapsed.Seconds()
	fmt.Printf("hetvliwload: %d targets, family %s (%d loops, %d frames)\n",
		len(urls), family, corpusLoops, frames)
	fmt.Printf("requests: %d ok, %d errors in %.2fs\n", ok, r.errors, secs)
	if r.firstErr != "" {
		fmt.Printf("first error: %s\n", r.firstErr)
	}
	if ok > 0 && secs > 0 {
		fmt.Printf("throughput: %.1f req/s, %.1f loops/s\n",
			float64(ok)/secs, float64(r.loopsDone)/secs)
	}
	if ok > 0 {
		fmt.Printf("latency: p50 %s  p90 %s  p99 %s  max %s\n",
			pct(r.latencies, 0.50).Round(time.Microsecond),
			pct(r.latencies, 0.90).Round(time.Microsecond),
			pct(r.latencies, 0.99).Round(time.Microsecond),
			r.latencies[ok-1].Round(time.Microsecond))
	}
}
