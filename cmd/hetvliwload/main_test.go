package main

import (
	"testing"
	"time"
)

// seq builds [1ms, 2ms, ..., n ms] — sorted, so pct can index directly.
func seq(n int) []time.Duration {
	s := make([]time.Duration, n)
	for i := range s {
		s[i] = time.Duration(i+1) * time.Millisecond
	}
	return s
}

// TestPctNearestRank pins the nearest-rank definition on the window sizes
// the load reporter actually sees: empty and near-empty windows (early in
// a run, or after an idle interval) and a full one. The float product
// q·n must not push the rank past a sample boundary (0.9×10 is
// 9.000000000000002 in float64), and no q may ever index out of range.
func TestPctNearestRank(t *testing.T) {
	cases := []struct {
		n    int
		q    float64
		want int // 1-based rank; 0 means the zero Duration
	}{
		{0, 0.5, 0}, {0, 0.9, 0}, {0, 0.99, 0}, {0, 1.0, 0},
		{1, 0.5, 1}, {1, 0.9, 1}, {1, 0.99, 1}, {1, 1.0, 1},
		{2, 0.5, 1}, {2, 0.9, 2}, {2, 0.99, 2}, {2, 1.0, 2},
		{100, 0.5, 50}, {100, 0.9, 90}, {100, 0.99, 99}, {100, 1.0, 100},
	}
	for _, tc := range cases {
		got := pct(seq(tc.n), tc.q)
		want := time.Duration(tc.want) * time.Millisecond
		if got != want {
			t.Errorf("pct(n=%d, q=%v) = %v, want rank %d (%v)", tc.n, tc.q, got, tc.want, want)
		}
	}
}

// TestPctFloatBoundary sweeps every q=k/n grid point at several window
// sizes: nearest-rank at an exact grid point must return rank k, which is
// exactly where naive ceil(q*n) breaks on accumulated float error.
func TestPctFloatBoundary(t *testing.T) {
	for _, n := range []int{3, 7, 10, 64, 100} {
		s := seq(n)
		for k := 1; k <= n; k++ {
			q := float64(k) / float64(n)
			if got, want := pct(s, q), s[k-1]; got != want {
				t.Errorf("n=%d q=%d/%d: got %v, want %v", n, k, n, got, want)
			}
		}
	}
}
