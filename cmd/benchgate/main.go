// Command benchgate compares two `go test -json` benchmark outputs and
// fails when a gated benchmark regressed beyond a threshold. It is the
// CI perf gate: the repository commits a BENCH_baseline.json snapshot,
// every CI run produces a fresh BENCH_ci.json, and
//
//	benchgate -baseline BENCH_baseline.json -current BENCH_ci.json \
//	          -gate 'BenchmarkWarmDiskCache/cold' \
//	          -normalize BenchmarkTable1ISA -threshold 15
//
// exits non-zero if the gated benchmarks' ns/op grew by more than the
// threshold percentage. Non-gated benchmarks are reported for context but
// never fail the build (micro-benchmarks at -benchtime=1x are too noisy
// to gate individually). The committed baseline is recorded on one
// machine and CI runs on another, so -normalize names a calibration
// benchmark whose time divides both sides first: a uniformly faster or
// slower runner cancels out and only relative regressions remain.
//
// Baselines regenerate with:
//
//	go test -bench=. -benchtime=1x -run '^$' -json ./... > BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// testEvent is the subset of the test2json record benchgate reads.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// benchLine matches a benchmark result line:
//
//	BenchmarkName[/sub]-8   	      12	  9536015 ns/op	 ...
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)

// parseBenchJSON extracts benchmark name -> ns/op from test2json output.
// A benchmark's name and timing may arrive as separate Output events (go
// test flushes the name before running the case), so output is
// reassembled per package before matching. The trailing -N GOMAXPROCS
// suffix is stripped so runs from machines with different core counts
// compare. A benchmark appearing repeatedly keeps its last value.
func parseBenchJSON(r io.Reader) (map[string]float64, error) {
	perPkg := map[string]*strings.Builder{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			return nil, fmt.Errorf("benchgate: malformed test2json line: %w", err)
		}
		if ev.Action != "output" {
			continue
		}
		b, ok := perPkg[ev.Package]
		if !ok {
			b = &strings.Builder{}
			perPkg[ev.Package] = b
			order = append(order, ev.Package)
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for _, pkg := range order {
		for _, line := range strings.Split(perPkg[pkg].String(), "\n") {
			m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			out[m[1]] = ns
		}
	}
	return out, nil
}

// regression describes one gated benchmark's comparison.
type regression struct {
	Name               string
	BaseNs, CurNs, Pct float64
	Failed             bool
}

// compare evaluates every benchmark present in both maps against the
// gate pattern and threshold (percent). When normalize names a
// calibration benchmark present in both files, each side's ns/op is
// divided by its own calibration time first, so a uniformly faster or
// slower machine (CI runners vs the laptop that recorded the committed
// baseline) cancels out and the gate measures the code, not the
// hardware. Returns an error when the requested calibration is missing.
func compare(base, cur map[string]float64, gate *regexp.Regexp, thresholdPct float64,
	normalize string) ([]regression, error) {
	scale := 1.0 // multiplies the current/base ratio
	if normalize != "" {
		nb, okB := base[normalize]
		nc, okC := cur[normalize]
		if !okB || !okC || nb <= 0 || nc <= 0 {
			return nil, fmt.Errorf("normalization benchmark %q missing from baseline or current run", normalize)
		}
		scale = nb / nc
	}
	var names []string
	for name := range base {
		if _, ok := cur[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	var out []regression
	for _, name := range names {
		b, c := base[name], cur[name]
		if b <= 0 {
			continue
		}
		pct := (c/b*scale - 1) * 100
		out = append(out, regression{
			Name:   name,
			BaseNs: b,
			CurNs:  c,
			Pct:    pct,
			Failed: gate.MatchString(name) && pct > thresholdPct,
		})
	}
	return out, nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_baseline.json", "committed test2json benchmark snapshot")
	current := flag.String("current", "BENCH_ci.json", "freshly produced test2json benchmark output")
	gatePat := flag.String("gate", "BenchmarkWarmDiskCache/cold", "regexp of benchmarks that fail the build on regression")
	threshold := flag.Float64("threshold", 15, "maximum allowed ns/op growth of gated benchmarks, percent")
	normalize := flag.String("normalize", "", "calibration benchmark: divide each side's ns/op by its own time for this benchmark, cancelling machine-speed differences between the baseline recorder and this runner")
	flag.Parse()

	// Anchor the whole pattern (the non-capturing group anchors every
	// alternative, not just the outermost ones): an unanchored gate like
	// `BenchmarkScheduleLoop` would also match the unrelated
	// `BenchmarkScheduleLoopEffort/effort=2` series and gate the wrong
	// numbers.
	gate, err := regexp.Compile("^(?:" + *gatePat + ")$")
	exitOn(err)
	base := mustParse(*baseline)
	cur := mustParse(*current)

	regs, err := compare(base, cur, gate, *threshold, *normalize)
	exitOn(err)
	if len(regs) == 0 {
		exitOn(fmt.Errorf("no common benchmarks between %s and %s", *baseline, *current))
	}
	failed := 0
	gated := 0
	for _, r := range regs {
		mark := " "
		if gate.MatchString(r.Name) {
			gated++
			mark = "*"
			if r.Failed {
				failed++
				mark = "!"
			}
		}
		fmt.Printf("%s %-55s %14.0f -> %14.0f ns/op  %+7.1f%%\n", mark, r.Name, r.BaseNs, r.CurNs, r.Pct)
	}
	if gated == 0 {
		exitOn(fmt.Errorf("gate %q matched no benchmark common to both files", *gatePat))
	}
	if failed > 0 {
		exitOn(fmt.Errorf("%d gated benchmark(s) regressed more than %.0f%%", failed, *threshold))
	}
	fmt.Printf("bench gate OK: %d gated benchmark(s) within %.0f%%\n", gated, *threshold)
}

func mustParse(path string) map[string]float64 {
	f, err := os.Open(path)
	exitOn(err)
	defer f.Close()
	m, err := parseBenchJSON(f)
	exitOn(err)
	if len(m) == 0 {
		exitOn(fmt.Errorf("%s contains no benchmark results", path))
	}
	return m
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}
