package main

import (
	"regexp"
	"strings"
	"testing"
)

const sampleJSON = `{"Action":"run","Package":"repro","Test":"BenchmarkWarmDiskCache"}
{"Action":"output","Package":"repro","Output":"BenchmarkWarmDiskCache/cold-8         \t       8\t  9536015 ns/op\t  792495 B/op\t    9047 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkWarmDiskCache/disk-warm-8    \t       8\t  9114619 ns/op\n"}
{"Action":"output","Package":"repro","Output":"not a benchmark line\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkScheduleLoop-8   \t       1\t  1278000 ns/op\n"}
{"Action":"pass","Package":"repro"}
`

func TestParseBenchJSON(t *testing.T) {
	m, err := parseBenchJSON(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkWarmDiskCache/cold":      9536015,
		"BenchmarkWarmDiskCache/disk-warm": 9114619,
		"BenchmarkScheduleLoop":            1278000,
	}
	if len(m) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(m), len(want), m)
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("%s = %v, want %v (GOMAXPROCS suffix must be stripped)", k, m[k], v)
		}
	}
}

// TestParseSplitOutputEvents: go test flushes a benchmark's name before
// running it, so the name and the timing arrive as separate Output events
// that must be reassembled.
func TestParseSplitOutputEvents(t *testing.T) {
	split := `{"Action":"output","Package":"repro","Output":"BenchmarkWarmDiskCache/cold-8         "}
{"Action":"output","Package":"other","Output":"BenchmarkElse-4 \t1\t42 ns/op\n"}
{"Action":"output","Package":"repro","Output":"\t       1\t  12345678 ns/op\n"}
`
	m, err := parseBenchJSON(strings.NewReader(split))
	if err != nil {
		t.Fatal(err)
	}
	if m["BenchmarkWarmDiskCache/cold"] != 12345678 {
		t.Errorf("split-event benchmark not reassembled: %v", m)
	}
	if m["BenchmarkElse"] != 42 {
		t.Errorf("interleaved package lost: %v", m)
	}
}

func TestCompareGates(t *testing.T) {
	base := map[string]float64{"BenchmarkWarmDiskCache/cold": 100, "BenchmarkOther": 100}
	cur := map[string]float64{"BenchmarkWarmDiskCache/cold": 120, "BenchmarkOther": 300}
	gate := regexp.MustCompile("BenchmarkWarmDiskCache/cold")

	regs, err := compare(base, cur, gate, 15, "")
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]regression{}
	for _, r := range regs {
		byName[r.Name] = r
	}
	if !byName["BenchmarkWarmDiskCache/cold"].Failed {
		t.Error("20% regression on the gated benchmark must fail a 15% threshold")
	}
	if byName["BenchmarkOther"].Failed {
		t.Error("ungated benchmarks must never fail the build")
	}

	// Within threshold: passes.
	cur["BenchmarkWarmDiskCache/cold"] = 110
	regs, err = compare(base, cur, gate, 15, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regs {
		if r.Failed {
			t.Errorf("%s failed at +10%% under a 15%% threshold", r.Name)
		}
	}
}

// TestGateAnchoring pins the anchored compilation of -gate: a gate naming
// one benchmark must not also capture a prefix-sharing sibling
// (BenchmarkScheduleLoop vs BenchmarkScheduleLoopEffort/effort=2), and
// the non-capturing group must anchor EVERY alternative of an
// alternation, not just the outer ends.
func TestGateAnchoring(t *testing.T) {
	anchor := func(pat string) *regexp.Regexp {
		return regexp.MustCompile("^(?:" + pat + ")$")
	}
	cases := []struct {
		pat, name string
		want      bool
	}{
		{"BenchmarkScheduleLoop", "BenchmarkScheduleLoop", true},
		{"BenchmarkScheduleLoop", "BenchmarkScheduleLoopEffort/effort=2", false},
		{"BenchmarkScheduleLoopEffort/effort=2", "BenchmarkScheduleLoopEffort/effort=2", true},
		{"BenchmarkScheduleLoopEffort/effort=2", "BenchmarkScheduleLoop", false},
		// Alternation: both alternatives anchored on both sides.
		{"BenchmarkWarmDiskCache/(cold|disk-warm)|BenchmarkScheduleLoopEffort/effort=2",
			"BenchmarkWarmDiskCache/cold", true},
		{"BenchmarkWarmDiskCache/(cold|disk-warm)|BenchmarkScheduleLoopEffort/effort=2",
			"BenchmarkScheduleLoopEffort/effort=2", true},
		{"BenchmarkWarmDiskCache/(cold|disk-warm)|BenchmarkScheduleLoopEffort/effort=2",
			"BenchmarkWarmDiskCacheXL/cold", false},
		{"BenchmarkWarmDiskCache/(cold|disk-warm)|BenchmarkScheduleLoopEffort/effort=2",
			"BenchmarkScheduleLoopEffort/effort=20", false},
		// A bare alternation must not let either side match unanchored.
		{"BenchmarkA|BenchmarkB", "BenchmarkAB", false},
		{"BenchmarkA|BenchmarkB", "XBenchmarkB", false},
		{"BenchmarkA|BenchmarkB", "BenchmarkB", true},
	}
	for _, tc := range cases {
		if got := anchor(tc.pat).MatchString(tc.name); got != tc.want {
			t.Errorf("gate %q vs %q: match=%v, want %v", tc.pat, tc.name, got, tc.want)
		}
	}

	// End to end through compare: the prefix sibling regressed wildly but
	// only the exact gated name may fail.
	base := map[string]float64{
		"BenchmarkScheduleLoop":                100,
		"BenchmarkScheduleLoopEffort/effort=2": 100,
	}
	cur := map[string]float64{
		"BenchmarkScheduleLoop":                110,
		"BenchmarkScheduleLoopEffort/effort=2": 500,
	}
	regs, err := compare(base, cur, anchor("BenchmarkScheduleLoop"), 15, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regs {
		if r.Failed {
			t.Errorf("unanchored spillover: %s failed although only BenchmarkScheduleLoop is gated", r.Name)
		}
	}
}

func TestCompareIgnoresMissing(t *testing.T) {
	base := map[string]float64{"BenchmarkGone": 100}
	cur := map[string]float64{"BenchmarkNew": 100}
	if regs, err := compare(base, cur, regexp.MustCompile("."), 15, ""); err != nil || len(regs) != 0 {
		t.Errorf("disjoint benchmark sets compared: %v (err %v)", regs, err)
	}
}

// TestCompareNormalized: a uniformly 2x-slower machine must not trip the
// gate when a calibration benchmark divides the machine speed out — and
// a real regression must still trip it.
func TestCompareNormalized(t *testing.T) {
	gate := regexp.MustCompile("BenchmarkWarmDiskCache/cold")
	base := map[string]float64{"BenchmarkWarmDiskCache/cold": 100, "BenchmarkCal": 10}
	// Same code on a machine 2x slower: everything doubles.
	cur := map[string]float64{"BenchmarkWarmDiskCache/cold": 200, "BenchmarkCal": 20}
	regs, err := compare(base, cur, gate, 15, "BenchmarkCal")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regs {
		if r.Failed {
			t.Errorf("machine-speed doubling tripped the normalized gate: %+v", r)
		}
	}
	// Real regression: the gated bench grew 2.6x while calibration only
	// doubled -> +30%% normalized.
	cur["BenchmarkWarmDiskCache/cold"] = 260
	regs, err = compare(base, cur, gate, 15, "BenchmarkCal")
	if err != nil {
		t.Fatal(err)
	}
	tripped := false
	for _, r := range regs {
		if r.Name == "BenchmarkWarmDiskCache/cold" && r.Failed {
			tripped = true
		}
	}
	if !tripped {
		t.Error("normalized gate missed a real regression")
	}
	// Missing calibration is an explicit error, not a silent raw compare.
	if _, err := compare(base, cur, gate, 15, "BenchmarkMissing"); err == nil {
		t.Error("missing calibration benchmark must error")
	}
}
