// Command hetvliwd serves the evaluation pipeline as a long-running
// HTTP/JSON daemon: one shared exploration engine (optionally backed by a
// disk-persistent cache directory) multiplexed across concurrent clients,
// with a bounded job queue, per-request cancellation and in-flight
// request deduplication.
//
//	hetvliwd -addr :8080 -cache-dir .cache
//	hetvliwd -addr 127.0.0.1:9000 -par 8 -workers 4 -queue 16
//
// Sharded (peer) mode runs N daemons as one cluster: every daemon gets
// the same peer set (the full list of shard base URLs, -peers and/or
// -peers-file) plus its own URL (-self). /v1/batch requests are then
// routed loop-by-loop to owning shards by rendezvous hashing on the
// loop's content hash, and disk-cache entries are served between shards
// (GET /v1/cache/{hash} singly, POST /v1/cache/batch in bulk — one
// round trip warms a forwarded sub-request's whole share), extending
// every shard's cache lookup chain to memory → disk → peer → compute:
//
//	hetvliwd -addr :8081 -cache-dir .cache1 \
//	  -peers http://h0:8081,http://h1:8081,http://h2:8081 \
//	  -self  http://h0:8081
//
// Endpoints: POST /v1/schedule, /v1/evaluate, /v1/suite, /v1/select,
// /v1/batch, /v1/cache/batch; GET /v1/healthz, /v1/stats,
// /v1/cache/{hash}. See docs/OPERATIONS.md for the full endpoint
// reference and cluster runbook. SIGINT/SIGTERM shut down gracefully:
// in-flight requests are cancelled (they return 503), the listener
// drains, and the disk cache's pending writes are flushed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache-dir", "", "disk-persistent exploration cache directory")
	par := flag.Int("par", 0, "engine worker parallelism (0 = NumCPU)")
	workers := flag.Int("workers", 0, "max concurrently executing jobs (0 = default)")
	queue := flag.Int("queue", 0, "max jobs waiting for a worker (0 = default)")
	peers := flag.String("peers", "", "comma-separated shard base URLs (all shards, this one included)")
	peersFile := flag.String("peers-file", "", "file of shard base URLs, one per line (# comments)")
	self := flag.String("self", "", "this shard's own base URL (required with -peers/-peers-file)")
	peerTimeout := flag.Duration("peer-timeout", 0, "bound on each peer call (0 = default 10s)")
	maxEffort := flag.Int("max-effort", 0, "cap on per-request ?effort= refinement budgets (0 = library default)")
	noPrune := flag.Bool("no-prune", false, "disable bound-guided sweep pruning on /v1/select and /v1/pareto (debugging; results are identical either way)")
	flag.Parse()

	peerList, err := cluster.ParsePeers(*peers, *peersFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetvliwd:", err)
		os.Exit(1)
	}

	srv, err := service.New(service.Config{
		Parallelism: *par,
		CacheDir:    *cacheDir,
		Workers:     *workers,
		QueueDepth:  *queue,
		Peers:       peerList,
		Self:        *self,
		PeerTimeout: *peerTimeout,
		MaxEffort:   *maxEffort,
		NoPrune:     *noPrune,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetvliwd:", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	if len(peerList) > 0 {
		fmt.Fprintf(os.Stderr, "hetvliwd: listening on %s (cache %q, shard %s of %d peers)\n",
			*addr, *cacheDir, *self, len(peerList))
	} else {
		fmt.Fprintf(os.Stderr, "hetvliwd: listening on %s (cache %q)\n", *addr, *cacheDir)
	}

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "hetvliwd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "hetvliwd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Close(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "hetvliwd: drain:", err)
	}
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "hetvliwd: shutdown:", err)
		os.Exit(1)
	}
}
