// Command hetvliwd serves the evaluation pipeline as a long-running
// HTTP/JSON daemon: one shared exploration engine (optionally backed by a
// disk-persistent cache directory) multiplexed across concurrent clients,
// with a bounded job queue, per-request cancellation and in-flight
// request deduplication.
//
//	hetvliwd -addr :8080 -cache-dir .cache
//	hetvliwd -addr 127.0.0.1:9000 -par 8 -workers 4 -queue 16
//
// Endpoints: POST /v1/schedule, /v1/evaluate, /v1/suite, /v1/select;
// GET /v1/healthz, /v1/stats. See the README "Serving" section for an
// example curl session. SIGINT/SIGTERM shut down gracefully: in-flight
// requests are cancelled (they return 503) and the listener drains.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	cacheDir := flag.String("cache-dir", "", "disk-persistent exploration cache directory")
	par := flag.Int("par", 0, "engine worker parallelism (0 = NumCPU)")
	workers := flag.Int("workers", 0, "max concurrently executing jobs (0 = default)")
	queue := flag.Int("queue", 0, "max jobs waiting for a worker (0 = default)")
	flag.Parse()

	srv, err := service.New(service.Config{
		Parallelism: *par,
		CacheDir:    *cacheDir,
		Workers:     *workers,
		QueueDepth:  *queue,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hetvliwd:", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "hetvliwd: listening on %s (cache %q)\n", *addr, *cacheDir)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "hetvliwd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "hetvliwd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Close(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "hetvliwd: drain:", err)
	}
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "hetvliwd: shutdown:", err)
		os.Exit(1)
	}
}
