package repro

import (
	"strings"
	"testing"
)

func buildAccumLoop() *Graph {
	g := NewGraph("acc")
	addr := g.AddOp(IntAdd, "addr++")
	g.AddDep(addr, addr, 1)
	ld := g.AddOp(Load, "ld")
	g.AddDep(addr, ld, 0)
	acc := g.AddOp(FPAdd, "acc+")
	g.AddDep(ld, acc, 0)
	g.AddDep(acc, acc, 1)
	st := g.AddOp(Store, "st")
	g.AddDep(acc, st, 0)
	return g
}

func TestFacadeScheduleSimulate(t *testing.T) {
	g := buildAccumLoop()
	cfg := HeterogeneousMachine(1, 900, 1350, 1)
	s, err := Schedule(g, cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	// The FP accumulation (recMII 3) cannot live in a slow cluster at the
	// minimum IT (2700 ps → slow II 2 < 3): it must be in cluster 0
	// whenever the schedule closed at MIT.
	if s.IT == 2700 && s.Assign[2] != 0 {
		t.Errorf("critical accumulation in cluster %d at MIT", s.Assign[2])
	}
	out := FormatSchedule(s)
	if !strings.Contains(out, "cluster C1") || !strings.Contains(out, "acc+") {
		t.Errorf("schedule listing broken:\n%s", out)
	}
	res, err := Simulate(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Texec <= 0 || res.Counts.MemAccesses != 200 {
		t.Errorf("simulation: Texec=%v mem=%g", res.Texec, res.Counts.MemAccesses)
	}
}

func TestFacadeRegistersAndAssembly(t *testing.T) {
	g := buildAccumLoop()
	cfg := HeterogeneousMachine(1, 900, 1350, 1)
	s, err := Schedule(g, cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	regs, err := AllocateRegisters(s)
	if err != nil {
		t.Fatal(err)
	}
	asm, err := EmitAssembly(s, regs)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{".cluster C1", "fp.alu", "load"} {
		if !strings.Contains(asm, want) {
			t.Errorf("assembly missing %q:\n%s", want, asm)
		}
	}
}

func TestFacadeUnroll(t *testing.T) {
	g := buildAccumLoop()
	u, err := Unroll(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumOps() != 2*g.NumOps() {
		t.Error("unroll factor not applied")
	}
}

func TestFacadeCorpus(t *testing.T) {
	names := BenchmarkNames()
	if len(names) != 10 {
		t.Fatalf("want 10 benchmarks, got %d", len(names))
	}
	b, err := GenerateBenchmark("swim", 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Loops) == 0 {
		t.Fatal("no loops generated")
	}
}

func TestFacadePipeline(t *testing.T) {
	r, err := RunBenchmark("sixtrack", PipelineOptions{LoopsPerBenchmark: 6, EnergyAware: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.ED2Ratio <= 0 || r.ED2Ratio > 1.2 {
		t.Errorf("implausible ED2 ratio %.3f", r.ED2Ratio)
	}
}

func TestFacadeExploreEngine(t *testing.T) {
	def, dense := DefaultDesignSpace(), DenseDesignSpace()
	if got, want := len(dense.FastFactors)*len(dense.SlowRatios),
		len(def.FastFactors)*len(def.SlowRatios); got <= want {
		t.Errorf("dense grid has %d candidates, not denser than default %d", got, want)
	}
	eng := NewExploreEngine(2)
	opts := PipelineOptions{LoopsPerBenchmark: 6, EnergyAware: true, Engine: eng}
	a, err := RunBenchmark("sixtrack", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunBenchmark("sixtrack", opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Het.ED2 != b.Het.ED2 || a.ED2Ratio != b.ED2Ratio {
		t.Errorf("shared engine changed results: %+v vs %+v", a.Het, b.Het)
	}
	st := eng.Stats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Errorf("engine cache unexercised across repeated runs: %+v", st)
	}
}

func TestFacadeReferenceMachine(t *testing.T) {
	cfg := ReferenceMachine(2)
	if cfg.Arch.Buses != 2 || cfg.Arch.NumClusters() != 4 {
		t.Error("reference machine misconfigured")
	}
	if !cfg.Clock.IsHomogeneous(cfg.Arch) {
		t.Error("reference machine must be homogeneous")
	}
}
