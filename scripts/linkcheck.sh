#!/usr/bin/env bash
# linkcheck.sh — fail on dead relative links in the repo's markdown.
#
# Scans README.md and docs/*.md for [text](target) links, resolves each
# relative target against the file that contains it, and reports targets
# that do not exist. External links (scheme://) and pure #anchors are
# skipped; a #fragment on a relative link is stripped before the check.
#
# Usage: scripts/linkcheck.sh [file.md ...]   (default: README.md docs/*.md)
set -euo pipefail
cd "$(dirname "$0")/.."

files=("$@")
if [ ${#files[@]} -eq 0 ]; then
  files=(README.md)
  for f in docs/*.md; do
    [ -e "$f" ] && files+=("$f")
  done
fi

bad=0
for f in "${files[@]}"; do
  dir=$(dirname "$f")
  # One inline link target per line: [..](target)
  while IFS= read -r target; do
    case "$target" in
      *://*|mailto:*|'#'*|'') continue ;;
    esac
    path=${target%%#*}
    [ -n "$path" ] || continue
    # Targets that escape the repo root (the GitHub ../../actions badge
    # convention) are not checkable against the working tree.
    case "$(realpath -m "$dir/$path")" in
      "$PWD"/*) ;;
      *) continue ;;
    esac
    if [ ! -e "$dir/$path" ]; then
      echo "$f: dead link: $target"
      bad=1
    fi
  done < <(grep -o '\][(][^)]*[)]' "$f" | sed 's/^](//; s/)$//')
done

if [ "$bad" -ne 0 ]; then
  echo "linkcheck: dead relative links found" >&2
  exit 1
fi
echo "linkcheck: ${#files[@]} files ok"
