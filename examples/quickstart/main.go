// Quickstart: build a small loop, modulo schedule it on a heterogeneous
// clustered VLIW machine, and simulate it.
//
// The loop is a running FP accumulation with an address recurrence —
// x[i] = x[i-1] + y[i]·z[i] — whose FP add forms the critical recurrence
// (recMII = 3 cycles). On a machine with one fast cluster (0.9 ns) and
// three slow clusters (1.35 ns), the scheduler keeps the recurrence in
// the fast cluster and pushes the slack work to the slow ones.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g := repro.NewGraph("accumulate")
	addr := g.AddOp(repro.IntAdd, "addr++")
	g.AddDep(addr, addr, 1) // address induction
	ldY := g.AddOp(repro.Load, "ld.y")
	ldZ := g.AddOp(repro.Load, "ld.z")
	g.AddDep(addr, ldY, 0)
	g.AddDep(addr, ldZ, 0)
	mul := g.AddOp(repro.FPMul, "mul")
	g.AddDep(ldY, mul, 0)
	g.AddDep(ldZ, mul, 0)
	acc := g.AddOp(repro.FPAdd, "acc+")
	g.AddDep(mul, acc, 0)
	g.AddDep(acc, acc, 1) // loop-carried sum: the critical recurrence
	st := g.AddOp(repro.Store, "st.x")
	g.AddDep(acc, st, 0)

	// One fast cluster at 0.9 ns, three slow at 1.35 ns, one bus.
	cfg := repro.HeterogeneousMachine(1, 900, 1350, 1)

	sched, err := repro.Schedule(g, cfg, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(repro.FormatSchedule(sched))

	res, err := repro.Simulate(sched, 200)
	if err != nil {
		log.Fatal(err)
	}
	regs, err := repro.AllocateRegisters(sched)
	if err != nil {
		log.Fatal(err)
	}
	asm, err := repro.EmitAssembly(sched, regs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("distributed code layout (Figure 1b):")
	fmt.Println(asm)
	fmt.Printf("simulated 200 iterations: Texec = %v (startup %v)\n",
		res.Texec, res.Startup)
	fmt.Printf("event counts: %.0f communications, %.0f cache accesses\n",
		res.Counts.Comms, res.Counts.MemAccesses)
	for c, u := range res.Counts.InsUnits {
		fmt.Printf("  cluster C%d executed %.0f instruction energy units\n", c+1, u)
	}
}
