// Design-space exploration for one program: reproduces the Section 3
// selection flow for a single benchmark and prints the estimated ED² of
// every (fast factor, slow ratio) candidate — the table the selection
// algorithm internally minimizes over — followed by the chosen
// configuration and its per-domain voltages.
package main

import (
	"fmt"
	"log"

	"repro/internal/confsel"
	"repro/internal/machine"
	"repro/internal/pipeline"
	"repro/internal/power"
)

func main() {
	const benchmark = "facerec"
	opts := pipeline.Options{Buses: 1, LoopsPerBenchmark: 24, EnergyAware: true}
	ref, err := pipeline.BuildReference(benchmark, opts)
	if err != nil {
		log.Fatal(err)
	}
	arch := ref.Arch
	cal, err := power.Calibrate(arch, ref.Profile.RefCounts, power.DefaultFractions())
	if err != nil {
		log.Fatal(err)
	}
	model := power.DefaultAlphaModel()
	space := confsel.DefaultSpace()

	hom, err := confsel.OptimumHomogeneous(arch, ref.Profile, cal, model, space)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: optimum homogeneous τ=%v V=%.3f → estimated ED2 %.4g\n\n",
		benchmark, hom.FastPeriod, hom.Clock.Vdd[0], hom.Estimate.ED2)

	fmt.Printf("estimated ED2 (normalized to hom-opt) per candidate:\n")
	fmt.Printf("%8s", "fast\\sr")
	for _, sr := range space.SlowRatios {
		fmt.Printf("%8.2f", sr)
	}
	fmt.Println()
	for _, ff := range space.FastFactors {
		fmt.Printf("%8.2f", ff)
		for _, sr := range space.SlowRatios {
			sub := space
			sub.FastFactors = []float64{ff}
			sub.SlowRatios = []float64{sr}
			sel, err := confsel.SelectHeterogeneous(arch, ref.Profile, cal, model, sub)
			if err != nil {
				fmt.Printf("%8s", "-")
				continue
			}
			fmt.Printf("%8.3f", sel.Estimate.ED2/hom.Estimate.ED2)
		}
		fmt.Println()
	}

	best, err := confsel.SelectHeterogeneous(arch, ref.Profile, cal, model, space)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselected: fast=%v slow=%v (estimated ratio %.3f)\n",
		best.FastPeriod, best.SlowPeriod, best.Estimate.ED2/hom.Estimate.ED2)
	for d := 0; d < arch.NumDomains(); d++ {
		fmt.Printf("  %-6s period ≥ %v  Vdd=%.3f  δ=%.3f σ=%.3f\n",
			arch.DomainName(machine.DomainID(d)), best.Clock.MinPeriod[d],
			best.Clock.Vdd[d], best.Scales.Delta[d], best.Scales.Sigma[d])
	}
}
