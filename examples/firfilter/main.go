// FIR filter: a resource-bound DSP kernel (the workload class where the
// paper's intro motivates clustered VLIWs) scheduled on the homogeneous
// reference machine and on a heterogeneous one, comparing initiation
// times, iteration lengths and communication counts.
//
// A k-tap FIR is memory- and multiplier-bound: its MII is set by the
// memory ports, not by recurrences, so heterogeneity cannot buy speed —
// exactly the swim/mgrid situation in the paper — but the schedule still
// fits, with the slow clusters absorbing most of the work.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/ddg"
)

func main() {
	const taps = 8
	g := ddg.FIRFilter("fir8", taps)
	fmt.Printf("FIR with %d taps: %d ops (%d memory), recMII=%d\n",
		taps, g.NumOps(), g.CountMemoryOps(), g.RecMII())

	for _, tc := range []struct {
		name string
		cfg  *repro.MachineConfig
	}{
		{"homogeneous 1GHz", repro.ReferenceMachine(1)},
		{"heterogeneous 1.0ns/1.33ns", repro.HeterogeneousMachine(1, 1000, 1330, 1)},
	} {
		sched, err := repro.Schedule(g, tc.cfg, 500)
		if err != nil {
			log.Fatalf("%s: %v", tc.name, err)
		}
		res, err := repro.Simulate(sched, 500)
		if err != nil {
			log.Fatalf("%s: %v", tc.name, err)
		}
		fmt.Printf("\n=== %s ===\n", tc.name)
		fmt.Printf("IT=%v  IIs=%v  SC=%d  it_length=%v\n",
			sched.IT, sched.II, sched.SC, sched.ItLength)
		fmt.Printf("copies per iteration: %d, register pressure: %v\n",
			sched.CommCount(), sched.MaxLive)
		fmt.Printf("500 iterations in %v\n", res.Texec)
	}
}
