// Corpus statistics: verifies that the synthetic SPECfp2000-like corpus
// reproduces the paper's Table 2 — the per-benchmark split of execution
// time among resource-constrained, borderline, and recurrence-constrained
// loops — and summarizes the recurrence structure that drives the
// heterogeneous benefits (few-op vs many-op critical recurrences).
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/loopgen"
)

// paperTable2 is Table 2 of the paper, for comparison.
var paperTable2 = map[string][3]float64{
	"wupwise":  {0.1404, 0.6876, 0.1720},
	"swim":     {1.0000, 0.0000, 0.0000},
	"mgrid":    {0.9554, 0.0000, 0.0446},
	"applu":    {0.3194, 0.0617, 0.6189},
	"galgel":   {0.3327, 0.0918, 0.5755},
	"facerec":  {0.1659, 0.0000, 0.8341},
	"lucas":    {0.3213, 0.0002, 0.6785},
	"fma3d":    {0.1522, 0.0296, 0.8182},
	"sixtrack": {0.0008, 0.0000, 0.9992},
	"apsi":     {0.1550, 0.0337, 0.8113},
}

func main() {
	fmt.Printf("%-10s %28s %28s %10s\n", "benchmark",
		"generated res/mid/rec (%)", "paper res/mid/rec (%)", "crit ops")
	for _, name := range repro.BenchmarkNames() {
		b, err := repro.GenerateBenchmark(name, 40)
		if err != nil {
			log.Fatal(err)
		}
		var shares [3]float64
		total := 0.0
		critOps, critLoops := 0, 0
		for _, l := range b.Loops {
			recMII, resMII := loopgen.MIIOf(l.Graph)
			m := recMII
			if resMII > m {
				m = resMII
			}
			tw := float64(m) * float64(l.Iterations) * l.Weight
			shares[l.Class] += tw
			total += tw
			if l.Class == loopgen.RecurrenceBound {
				if recs := l.Graph.Recurrences(); len(recs) > 0 {
					critOps += len(recs[0].Ops)
					critLoops++
				}
			}
		}
		avgCrit := 0.0
		if critLoops > 0 {
			avgCrit = float64(critOps) / float64(critLoops)
		}
		p := paperTable2[name]
		fmt.Printf("%-10s %8.1f /%5.1f /%5.1f %14.1f /%5.1f /%5.1f %9.1f\n",
			name,
			shares[0]/total*100, shares[1]/total*100, shares[2]/total*100,
			p[0]*100, p[1]*100, p[2]*100, avgCrit)
	}
	fmt.Println("\n'crit ops' = average size of the most critical recurrence in")
	fmt.Println("recurrence-bound loops: small for sixtrack/facerec/lucas (large")
	fmt.Println("energy savings possible), large for fma3d/apsi (speedup only).")
}
